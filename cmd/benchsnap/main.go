// Command benchsnap measures the library's hot query paths on the current
// machine and writes a JSON perf snapshot (BENCH_<seq>.json). Snapshots
// committed over time form the performance trajectory of the repository:
// each entry records ns/op and allocs/op for the single-query exact
// search, the zero-allocation steady-state path, a 5-chunk approximate
// search, whole-workload batch throughput (both the allocating form and
// the chunk-major zero-allocation result arena), a multi-descriptor
// image query, and the sharded scatter-gather layer (single-query,
// batch at a matched total chunk budget under both the per-shard and the
// global budget discipline, and multi-descriptor), plus fault-tolerance
// rows: a Zipf-skewed workload run healthy and with one shard down at
// replication 1 and 2, each scored with p99 simulated time and recall
// against the exact ground truth.
//
// Schema 4 adds serving rows measured end to end over HTTP loopback
// through internal/server: sequential search latency (wall p50/p99 from
// the server's own histogram), shed rate under 2× saturating concurrency
// against a bounded in-flight limiter, and the degraded-response count
// with shard 0 held down at replication 1 (honest degradation) and 2
// (replicas mask the failure).
//
// Schema 5 adds decoded-chunk cache rows on the Zipf workload: wall
// throughput over a file-backed index with and without the cache (the
// cached row also records its hit rate), and the cost model's
// quality/time residency curve — simulated ms/query with the 0%, 10%,
// and 25% hottest chunks RAM-resident via simdisk.CacheTier.
//
// Schema 6 adds the batch-scheduler comparison — the same Zipf budget-5
// batch over the file-backed store run under the asynchronous per-chunk
// work queue and under the retained lockstep round-barrier baseline
// (byte-identical results, wall time only) — and a per-backend GB/s
// column for the query-pair shape of the multi kernel (2 queries per
// call, the shape the AVX2 pair kernel packs into one register).
//
// Schema 7 adds spread-reads rows on the replicated (R=2) Zipf
// workload: the completion run healthy and with one shard down under
// the spread-reads routing policy (answers byte-identical to
// primary-only routing; only the simulated machine assignment moves),
// and the global-budget 5-chunk run with spread off and on. Each row
// records the per-shard load split — the population stddev of the
// shards' served-read counts and of their billed simulated serving
// milliseconds — alongside the usual p99 simulated time.
//
// Usage:
//
//	benchsnap [-n 12000] [-chunk 300] [-k 30] [-seed 42] [-shards 4] [-out BENCH_10.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/chunkfile"
	"repro/internal/search"
	"repro/internal/search/batchexec"
	"repro/internal/server"
	"repro/internal/simdisk"
	"repro/internal/vec"
	wkld "repro/internal/workload"
)

type measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// SimMsPerQuery and ChunksPerQuery report the deterministic 2005
	// cost-model outcome per query (mean over the workload) — the
	// modeled serving metrics the paper's figures are drawn in. For
	// sharded entries Simulated is the max over the shards a query
	// touched, so these rows show the scatter-gather response-time win
	// independent of the benchmark host's core count and load.
	SimMsPerQuery  float64 `json:"sim_ms_per_query,omitempty"`
	ChunksPerQuery float64 `json:"chunks_per_query,omitempty"`
	// SimMsP99 is the 99th-percentile per-query simulated time — the
	// tail-latency metric the Zipf/fault rows exist to expose. Recall is
	// the mean fraction of the true k-NN found (1.0 for a healthy
	// completion run; honestly lower for a degraded one).
	// DegradedQueries counts queries that skipped unavailable chunks and
	// SkippedPerQuery the mean chunks skipped, so a snapshot shows how
	// much data a degraded row actually lost.
	SimMsP99        float64 `json:"sim_ms_p99,omitempty"`
	Recall          float64 `json:"recall,omitempty"`
	DegradedQueries int     `json:"degraded_queries,omitempty"`
	SkippedPerQuery float64 `json:"chunks_skipped_per_query,omitempty"`
	// Serving-row fields (schema 4), all reported by the server itself:
	// WallP50Us/WallP99Us are end-to-end HTTP latency percentiles from
	// the server's lock-free histogram, ShedRate the fraction of requests
	// shed with 429/503 under the row's offered load.
	WallP50Us int64   `json:"wall_p50_us,omitempty"`
	WallP99Us int64   `json:"wall_p99_us,omitempty"`
	ShedRate  float64 `json:"shed_rate,omitempty"`
	// CacheHitRate (schema 5) is hits/(hits+misses) of the decoded-chunk
	// cache over the row's whole run, for rows run against a cached store.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// LoadReadsStddev and LoadBilledStddevMs (schema 7) report the
	// per-shard load split of one clean workload pass: the population
	// stddev of the shards' served-read counts and of their billed
	// simulated serving milliseconds (the spread-reads estimator's
	// ledger; zero with spread off). Lower means the serving load
	// spread more evenly across the fleet.
	LoadReadsStddev    float64 `json:"load_reads_stddev,omitempty"`
	LoadBilledStddevMs float64 `json:"load_billed_stddev_ms,omitempty"`
}

// withStats annotates a measurement with the cost-model outcome of one
// executed workload.
func withStats(m measurement, results []repro.Result) measurement {
	var simMs, chunks float64
	for i := range results {
		simMs += results[i].Simulated.Seconds() * 1e3
		chunks += float64(results[i].ChunksRead)
	}
	n := float64(len(results))
	m.SimMsPerQuery = simMs / n
	m.ChunksPerQuery = chunks / n
	return m
}

// withQuality annotates a measurement with the tail-latency and quality
// outcome of one executed workload: p99 simulated time, mean recall
// against the supplied ground truth, and the degradation counters.
func withQuality(m measurement, results []repro.Result, truths [][]repro.Neighbor) measurement {
	m = withStats(m, results)
	simMs := make([]float64, len(results))
	var recall, skipped float64
	for i := range results {
		simMs[i] = results[i].Simulated.Seconds() * 1e3
		recall += repro.Precision(results[i].Neighbors, truths[i])
		skipped += float64(results[i].ChunksSkipped)
		if results[i].Degraded {
			m.DegradedQueries++
		}
	}
	sort.Float64s(simMs)
	m.SimMsP99 = simMs[(len(simMs)*99+99)/100-1]
	m.Recall = recall / float64(len(results))
	m.SkippedPerQuery = skipped / float64(len(results))
	return m
}

// kernelThroughput is one backend's distance-kernel bandwidth: descriptor
// bytes streamed per second through the two scan kernels (dims=24,
// 4096-row backing for the single-query kernel, 16 queries × 256-row
// blocks — the batch engine's shape — for the multi kernel) plus the
// query-pair shape of the multi kernel (2 queries per call — the shape
// the AVX2 pair kernel serves from one 256-bit register).
type kernelThroughput struct {
	SquaredDistancesToGBps        float64 `json:"squared_distances_to_gbps"`
	SquaredDistancesMultiGBps     float64 `json:"squared_distances_multi_gbps"`
	SquaredDistancesMultiPairGBps float64 `json:"squared_distances_multi_pair_gbps"`
}

type snapshot struct {
	Schema      int    `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	N           int    `json:"collection_size"`
	ChunkSize   int    `json:"chunk_size"`
	K           int    `json:"k"`
	Seed        int64  `json:"seed"`
	Shards      int    `json:"shards"`
	// VecBackend is the kernel backend (vec.Backend()) the library
	// benchmarks below ran on; Kernels holds raw kernel bandwidth for
	// every backend this CPU can run, so a snapshot records both the
	// dispatch pick and the per-backend headroom it picked from.
	VecBackend string                      `json:"vec_backend"`
	Kernels    map[string]kernelThroughput `json:"kernels"`
	Benchmarks map[string]measurement      `json:"benchmarks"`
}

// kernelSnapshots measures every available kernel backend's bandwidth,
// restoring the dispatch pick before returning.
func kernelSnapshots() map[string]kernelThroughput {
	const dims, rows, nq, mrows = 24, 4096, 16, 256
	r := rand.New(rand.NewSource(1))
	backing := make([]float32, rows*dims)
	for i := range backing {
		backing[i] = float32(r.NormFloat64())
	}
	queries := make([]float32, nq*dims)
	for i := range queries {
		queries[i] = float32(r.NormFloat64())
	}
	q := vec.Vector(queries[:dims])
	out := make([]float64, nq*rows)

	active := vec.Backend()
	defer func() {
		if err := vec.UseBackend(active); err != nil {
			panic(err)
		}
	}()
	gbps := func(bytesPerOp int64, run func()) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run()
			}
		})
		return float64(bytesPerOp) / float64(res.NsPerOp())
	}
	kernels := make(map[string]kernelThroughput)
	for _, name := range vec.Backends() {
		if err := vec.UseBackend(name); err != nil {
			panic(err)
		}
		kernels[name] = kernelThroughput{
			SquaredDistancesToGBps: gbps(rows*dims*4, func() {
				vec.SquaredDistancesTo(q, backing, dims, out)
			}),
			SquaredDistancesMultiGBps: gbps(nq*mrows*dims*4, func() {
				vec.SquaredDistancesMulti(queries, backing[:mrows*dims], dims, out)
			}),
			SquaredDistancesMultiPairGBps: gbps(2*rows*dims*4, func() {
				vec.SquaredDistancesMulti(queries[:2*dims], backing, dims, out[:2*rows])
			}),
		}
	}
	return kernels
}

func toMeasurement(r testing.BenchmarkResult) measurement {
	return measurement{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		OpsPerSec:   1e9 / float64(r.NsPerOp()),
	}
}

func main() {
	n := flag.Int("n", 12000, "collection size")
	chunk := flag.Int("chunk", 300, "chunk size")
	k := flag.Int("k", 30, "neighbors per query")
	seed := flag.Int64("seed", 42, "generator seed")
	shards := flag.Int("shards", 4, "shard count for the sharded benchmarks")
	out := flag.String("out", "BENCH_10.json", "output path")
	flag.Parse()

	coll := repro.GenerateCollection(*n, *seed)
	idx, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: *chunk})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: build:", err)
		os.Exit(1)
	}
	defer idx.Close()
	sharded, err := repro.BuildSharded(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: *chunk}, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: build sharded:", err)
		os.Exit(1)
	}
	defer sharded.Close()
	q := coll.Vec(17)
	queries, err := repro.DatasetQueries(coll, 200, *seed+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: queries:", err)
		os.Exit(1)
	}

	snap := snapshot{
		Schema:      7,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		N:           *n,
		ChunkSize:   *chunk,
		K:           *k,
		Seed:        *seed,
		Shards:      *shards,
		VecBackend:  vec.Backend(),
		Kernels:     kernelSnapshots(),
		Benchmarks:  map[string]measurement{},
	}

	snap.Benchmarks["single_query_completion"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Search(q, repro.SearchOptions{K: *k}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Benchmarks["single_query_steady_state"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		var res repro.Result
		if err := idx.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Benchmarks["single_query_budget5"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Search(q, repro.SearchOptions{K: *k, MaxChunks: 5}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	workload := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.SearchBatch(queries, repro.BatchOptions{
				SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	m := toMeasurement(workload)
	m.OpsPerSec *= float64(len(queries)) // per query, not per batch
	snap.Benchmarks["batch_budget5_200q"] = m

	// batchBench measures one arena-path batch configuration: wall time
	// via testing.Benchmark plus the deterministic cost-model stats from
	// the (identical every run) executed workload.
	batchBench := func(run func(results []repro.Result) error) measurement {
		results := make([]repro.Result, len(queries))
		r := testing.Benchmark(func(b *testing.B) {
			// Warm up inside the closure: the benchmark driver GCs before
			// every probe run (evicting the pooled arenas), so the warm-up
			// must repopulate them after that, or the one-off re-allocation
			// smears over the measured alloc/op average.
			if err := run(results); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(results); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := toMeasurement(r)
		m.OpsPerSec *= float64(len(queries))
		return withStats(m, results)
	}

	// The zero-allocation batch path: the chunk-major engine with a
	// recycled caller-owned result arena. Steady state must be 0 allocs.
	snap.Benchmarks["batch_into_budget5_200q"] = batchBench(func(results []repro.Result) error {
		return idx.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5},
		}, results)
	})

	// Whole-image multi-descriptor query: a 50-descriptor bag batched
	// against the store, 3-chunk budget per descriptor.
	bag := make([]repro.Vector, 50)
	for i := range bag {
		bag[i] = coll.Vec(i * 31)
	}
	snap.Benchmarks["multiquery_50desc"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.MultiSearch(bag, repro.MultiSearchOptions{K: 10, MaxChunks: 3}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Sharded scatter-gather triples. Three comparisons at the same total
	// chunk bill (shards×5 chunks/query), all pinned equivalent by tests:
	//
	//   - Single engine at budget shards×5: the quality baseline — the
	//     globally best-ranked chunks, one simulated machine.
	//   - Per-shard budget 5 on S shards: the same bill spent on each
	//     shard's local top 5 — modeled response time divides by ~S but
	//     the chunks are not the globally best ones.
	//   - Global budget shards×5 on S shards: the global-budget router —
	//     the identical chunks (and neighbors) as the single engine, with
	//     each chunk charged to its owning shard's parallel machine. Same
	//     chunks_per_query as the single engine, sharded
	//     sim_ms_per_query: the closed gap BENCH_5 records.
	//
	// A run-to-completion pair rides along: identical exact answers from
	// the single and the scattered path. Wall ns/op on the benchmark host
	// measures the scatter's CPU-level parallelism only up to the host's
	// core count; sim_ms_per_query is the deterministic serving metric
	// the repo's figures are drawn in.
	totalBudget := *shards * 5
	singleKey := fmt.Sprintf("batch_into_budget%d_200q", totalBudget)
	if _, done := snap.Benchmarks[singleKey]; !done { // -shards 1 matches the budget-5 entry above
		snap.Benchmarks[singleKey] = batchBench(func(results []repro.Result) error {
			return idx.SearchBatchInto(queries, repro.BatchOptions{
				SearchOptions: repro.SearchOptions{K: *k, MaxChunks: totalBudget},
			}, results)
		})
	}
	snap.Benchmarks[fmt.Sprintf("sharded%d_batch_into_budget5_200q", *shards)] = batchBench(func(results []repro.Result) error {
		return sharded.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5},
		}, results)
	})
	snap.Benchmarks[fmt.Sprintf("sharded%d_batch_into_global_budget%d_200q", *shards, totalBudget)] = batchBench(func(results []repro.Result) error {
		return sharded.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k, MaxChunks: totalBudget, GlobalBudget: true},
		}, results)
	})
	snap.Benchmarks[fmt.Sprintf("sharded%d_batch_into_global_completion_200q", *shards)] = batchBench(func(results []repro.Result) error {
		return sharded.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k, GlobalBudget: true},
		}, results)
	})
	snap.Benchmarks["batch_into_completion_200q"] = batchBench(func(results []repro.Result) error {
		return idx.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k},
		}, results)
	})
	snap.Benchmarks[fmt.Sprintf("sharded%d_batch_into_completion_200q", *shards)] = batchBench(func(results []repro.Result) error {
		return sharded.SearchBatchInto(queries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k},
		}, results)
	})

	snap.Benchmarks[fmt.Sprintf("sharded%d_single_completion", *shards)] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		var res repro.Result
		if err := sharded.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sharded.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Benchmarks[fmt.Sprintf("sharded%d_multiquery_50desc", *shards)] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sharded.MultiSearch(bag, repro.MultiSearchOptions{K: 10, MaxChunks: 3}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Fault-tolerance rows: a Zipf-skewed workload (the access pattern
	// replication targets) run to completion, healthy and with shard 0
	// held down, at replication 1 and 2. Ground truth over the full
	// collection scores every row's recall, so the degraded R=1 row shows
	// honestly how much quality one lost shard costs, while the R=2 rows
	// show the failover serving identical answers; sim_ms_p99 shows what
	// the failure does to tail latency under skew.
	zipfQueries, err := repro.ZipfQueries(coll, 200, 1.3, *seed+2)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: zipf queries:", err)
		os.Exit(1)
	}
	truths := make([][]repro.Neighbor, len(zipfQueries))
	for i, zq := range zipfQueries {
		truths[i] = repro.Exact(coll, zq, *k)
	}
	replicated, err := repro.BuildReplicated(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: *chunk},
		*shards, 2, zipfQueries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: build replicated:", err)
		os.Exit(1)
	}
	defer replicated.Close()

	zipfBench := func(sx *repro.ShardedIndex, down bool) measurement {
		sx.ResetHealth()
		if down {
			sx.MarkShardDown(0)
		}
		defer sx.ResetHealth()
		results := make([]repro.Result, len(zipfQueries))
		run := func() error {
			return sx.SearchBatchInto(zipfQueries, repro.BatchOptions{
				SearchOptions: repro.SearchOptions{K: *k},
			}, results)
		}
		r := testing.Benchmark(func(b *testing.B) {
			if err := run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := toMeasurement(r)
		m.OpsPerSec *= float64(len(zipfQueries))
		return withQuality(m, results, truths)
	}
	for _, row := range []struct {
		name string
		sx   *repro.ShardedIndex
		down bool
	}{
		{fmt.Sprintf("sharded%d_r1_zipf_completion_healthy", *shards), sharded, false},
		{fmt.Sprintf("sharded%d_r1_zipf_completion_1down", *shards), sharded, true},
		{fmt.Sprintf("sharded%d_r2_zipf_completion_healthy", *shards), replicated, false},
		{fmt.Sprintf("sharded%d_r2_zipf_completion_1down", *shards), replicated, true},
	} {
		snap.Benchmarks[row.name] = zipfBench(row.sx, row.down)
	}

	// Spread-reads rows (schema 7): the same replicated Zipf workload
	// with every chunk read served from the least-billed live copy
	// instead of the primary. Answers are byte-identical to the
	// primary-only rows; what moves is the simulated machine assignment
	// — and with it the p99 — plus the per-shard load split, which each
	// row records from one clean pass (stddev of served reads and of
	// billed serving milliseconds). The completion pair shows healthy
	// rebalancing and the honest cost of losing a shard (the survivors
	// really absorb its reads); the global-budget 5-chunk pair shows the
	// policy where skew bites hardest, hot chunks concentrated by the
	// global rank.
	zipfSpread := func(down, spread, global bool, budget int) measurement {
		replicated.ResetHealth()
		replicated.SetSpreadReads(spread)
		if down {
			replicated.MarkShardDown(0)
		}
		defer func() {
			replicated.ResetHealth()
			replicated.SetSpreadReads(false)
		}()
		opts := repro.BatchOptions{SearchOptions: repro.SearchOptions{
			K: *k, MaxChunks: budget, GlobalBudget: global,
		}}
		results := make([]repro.Result, len(zipfQueries))
		run := func() error { return replicated.SearchBatchInto(zipfQueries, opts, results) }
		r := testing.Benchmark(func(b *testing.B) {
			if err := run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := toMeasurement(r)
		m.OpsPerSec *= float64(len(zipfQueries))
		m = withQuality(m, results, truths)
		// One clean pass for the load split: the benchmark loop above
		// accrued counters across iterations, so re-run once from zero.
		replicated.ResetHealth()
		if down {
			replicated.MarkShardDown(0)
		}
		if err := run(); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap: spread load pass:", err)
			os.Exit(1)
		}
		loads := replicated.ShardLoads()
		m.LoadReadsStddev = wkld.Stddev(wkld.LoadReads(loads))
		m.LoadBilledStddevMs = wkld.Stddev(wkld.LoadSeconds(loads)) * 1e3
		return m
	}
	for _, row := range []struct {
		name                 string
		down, spread, global bool
		budget               int
	}{
		{fmt.Sprintf("sharded%d_r2_zipf_completion_healthy_spread", *shards), false, true, false, 0},
		{fmt.Sprintf("sharded%d_r2_zipf_completion_1down_spread", *shards), true, true, false, 0},
		{fmt.Sprintf("sharded%d_r2_zipf_budget5_global_spreadoff", *shards), false, false, true, 5},
		{fmt.Sprintf("sharded%d_r2_zipf_budget5_global_spreadon", *shards), false, true, true, 5},
	} {
		snap.Benchmarks[row.name] = zipfSpread(row.down, row.spread, row.global, row.budget)
	}

	// Serving rows (schema 4): the online layer measured end to end over
	// HTTP loopback. The prober never starts (the handler is served
	// directly), so a MarkShardDown drill stays down for the row; wall
	// percentiles come from the server's own histogram, shed rate from
	// its outcome counters.
	servingRow := func(backend server.Backend, cfg server.Config, workers, perWorker, maxChunks int) measurement {
		reg := server.NewRegistry()
		if err := reg.Add("bench", backend); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap: serving:", err)
			os.Exit(1)
		}
		s := server.New(reg, cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		client := ts.Client()
		defer client.CloseIdleConnections()

		bodies := make([][]byte, len(queries))
		for i, zq := range queries {
			raw, err := json.Marshal(server.SearchRequest{Query: zq, K: *k, MaxChunks: maxChunks})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap: serving:", err)
				os.Exit(1)
			}
			bodies[i] = raw
		}
		do := func(i int) {
			resp, err := client.Post(ts.URL+"/v1/indexes/bench/search", "application/json",
				bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsnap: serving request:", err)
				os.Exit(1)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		// Warm the HTTP connection off the books: /healthz is not metered,
		// so the measured counters cover exactly the workers' requests.
		if resp, err := client.Get(ts.URL + "/healthz"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}

		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					do(w*perWorker + i)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)

		ms := s.Metrics().Snapshot(0, nil)
		return measurement{
			NsPerOp:         elapsed.Nanoseconds() / ms.Requests,
			Iterations:      int(ms.Requests),
			OpsPerSec:       float64(ms.Requests) / elapsed.Seconds(),
			WallP50Us:       ms.WallP50Us,
			WallP99Us:       ms.WallP99Us,
			ShedRate:        float64(ms.ShedInFlight+ms.ShedTenant) / float64(ms.Requests),
			DegradedQueries: int(ms.Degraded),
		}
	}

	snap.Benchmarks["serving_search_seq_200q"] = servingRow(sharded, server.Config{}, 1, len(queries), 5)
	snap.Benchmarks["serving_shed_2x_inflight4"] = servingRow(sharded,
		server.Config{MaxInFlight: 4}, 8, 50, 5)
	sharded.MarkShardDown(0)
	snap.Benchmarks[fmt.Sprintf("serving_degraded_r1_1down_%dq", len(queries))] =
		servingRow(sharded, server.Config{}, 1, len(queries), 0)
	sharded.ResetHealth()
	replicated.MarkShardDown(0)
	snap.Benchmarks[fmt.Sprintf("serving_degraded_r2_1down_%dq", len(queries))] =
		servingRow(replicated, server.Config{}, 1, len(queries), 0)
	replicated.ResetHealth()

	// Cache rows (schema 5). First the wall-clock effect: the same Zipf
	// budget-5 batch over a file-backed index, cacheless vs behind a
	// decoded-chunk cache big enough to go hot. Results are byte-identical
	// (pinned by tests); only wall time and the hit rate differ.
	cacheDir, err := os.MkdirTemp("", "benchsnap-cache-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: cache dir:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(cacheDir)
	cp, ip := cacheDir+"/bench.chunk", cacheDir+"/bench.idx"
	if err := idx.Save(cp, ip); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: cache save:", err)
		os.Exit(1)
	}
	fileBench := func(cfg repro.OpenConfig) measurement {
		ix, err := repro.OpenWith(cp, ip, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap: cache open:", err)
			os.Exit(1)
		}
		defer ix.Close()
		results := make([]repro.Result, len(zipfQueries))
		run := func() error {
			return ix.SearchBatchInto(zipfQueries, repro.BatchOptions{
				SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5},
			}, results)
		}
		r := testing.Benchmark(func(b *testing.B) {
			if err := run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := toMeasurement(r)
		m.OpsPerSec *= float64(len(zipfQueries))
		m = withStats(m, results)
		if st := ix.CacheStats(); st.Enabled {
			m.CacheHitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		return m
	}
	snap.Benchmarks["zipf_budget5_file_uncached_200q"] = fileBench(repro.OpenConfig{})
	snap.Benchmarks["zipf_budget5_file_cached_200q"] = fileBench(repro.OpenConfig{CacheBytes: 256 << 20})

	// Batch-scheduler rows (schema 6): the same Zipf budget-5 batch over
	// the file-backed store, run through the internal engine under the
	// asynchronous per-chunk work queue and the lockstep round-barrier
	// baseline. Results are byte-identical (pinned by tests); the rows
	// record what removing the round barrier is worth in wall time when
	// chunk decodes have real latency.
	schedStore, err := chunkfile.Open(cp, ip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: scheduler open:", err)
		os.Exit(1)
	}
	defer schedStore.Close()
	schedEng := batchexec.New(schedStore, nil)
	schedBench := func(sched batchexec.Scheduler) measurement {
		results := make([]search.Result, len(zipfQueries))
		run := func() error {
			return schedEng.Run(zipfQueries, batchexec.Options{
				K:         *k,
				Stop:      search.ChunkBudget(5),
				Overlap:   true,
				Scheduler: sched,
			}, results)
		}
		r := testing.Benchmark(func(b *testing.B) {
			if err := run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		m := toMeasurement(r)
		m.OpsPerSec *= float64(len(zipfQueries))
		var simMs, chunks float64
		for i := range results {
			simMs += results[i].Elapsed.Seconds() * 1e3
			chunks += float64(results[i].ChunksRead)
		}
		m.SimMsPerQuery = simMs / float64(len(results))
		m.ChunksPerQuery = chunks / float64(len(results))
		return m
	}
	snap.Benchmarks["zipf_budget5_file_sched_async_200q"] = schedBench(batchexec.SchedulerAsync)
	snap.Benchmarks["zipf_budget5_file_sched_lockstep_200q"] = schedBench(batchexec.SchedulerLockstep)

	// Then the modeled residency curve: the 2005 machine with the top-N%
	// hottest chunks RAM-resident (simdisk.CacheTier), same workload. The
	// 0% row is the baseline and doubles as the access-profiling pass that
	// the 10% and 25% promotions rank chunks by; a resident chunk is
	// charged only its CPU scan, so sim_ms_per_query falls as residency
	// grows while answers and chunks_per_query stay identical.
	tierModel := repro.CostModel(*simdisk.Default2005())
	tier := simdisk.NewCacheTier(idx.Chunks())
	tierModel.Cache = tier
	residentRow := func(frac float64) measurement {
		tier.SetResidentTopFraction(frac)
		results := make([]repro.Result, len(zipfQueries))
		if err := idx.SearchBatchInto(zipfQueries, repro.BatchOptions{
			SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5, Model: &tierModel},
		}, results); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap: resident row:", err)
			os.Exit(1)
		}
		return withStats(measurement{Iterations: 1}, results)
	}
	snap.Benchmarks["zipf_budget5_sim_resident0"] = residentRow(0)
	snap.Benchmarks["zipf_budget5_sim_resident10"] = residentRow(0.10)
	snap.Benchmarks["zipf_budget5_sim_resident25"] = residentRow(0.25)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (vec backend %s)\n", *out, snap.VecBackend)
	kNames := make([]string, 0, len(snap.Kernels))
	for name := range snap.Kernels {
		kNames = append(kNames, name)
	}
	sort.Strings(kNames)
	for _, name := range kNames {
		kt := snap.Kernels[name]
		fmt.Printf("  kernel %-10s %6.2f GB/s dists-to  %6.2f GB/s dists-multi  %6.2f GB/s dists-multi-pair\n",
			name, kt.SquaredDistancesToGBps, kt.SquaredDistancesMultiGBps, kt.SquaredDistancesMultiPairGBps)
	}
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := snap.Benchmarks[name]
		line := fmt.Sprintf("  %-36s %10d ns/op  %6.0f ops/s  %3d allocs/op",
			name, m.NsPerOp, m.OpsPerSec, m.AllocsPerOp)
		if m.SimMsPerQuery > 0 {
			line += fmt.Sprintf("  %8.1f sim-ms/q  %5.1f chunks/q", m.SimMsPerQuery, m.ChunksPerQuery)
		}
		if m.Recall > 0 {
			line += fmt.Sprintf("  %8.1f sim-ms/p99  %.3f recall", m.SimMsP99, m.Recall)
			if m.DegradedQueries > 0 {
				line += fmt.Sprintf("  (%d degraded, %.1f skipped/q)", m.DegradedQueries, m.SkippedPerQuery)
			}
		}
		if m.WallP99Us > 0 {
			line += fmt.Sprintf("  wall p50 %dµs p99 %dµs  shed %.2f  %d degraded",
				m.WallP50Us, m.WallP99Us, m.ShedRate, m.DegradedQueries)
		}
		if m.CacheHitRate > 0 {
			line += fmt.Sprintf("  %.2f hit rate", m.CacheHitRate)
		}
		fmt.Println(line)
	}
}
