// Command benchsnap measures the library's hot query paths on the current
// machine and writes a JSON perf snapshot (BENCH_<seq>.json). Snapshots
// committed over time form the performance trajectory of the repository:
// each entry records ns/op and allocs/op for the single-query exact
// search, the zero-allocation steady-state path, a 5-chunk approximate
// search, whole-workload batch throughput (both the allocating form and
// the chunk-major zero-allocation result arena), and a multi-descriptor
// image query.
//
// Usage:
//
//	benchsnap [-n 12000] [-chunk 300] [-k 30] [-seed 42] [-out BENCH_2.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
)

type measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type snapshot struct {
	Schema      int                    `json:"schema"`
	CreatedUnix int64                  `json:"created_unix"`
	GoVersion   string                 `json:"go_version"`
	GOMAXPROCS  int                    `json:"gomaxprocs"`
	N           int                    `json:"collection_size"`
	ChunkSize   int                    `json:"chunk_size"`
	K           int                    `json:"k"`
	Seed        int64                  `json:"seed"`
	Benchmarks  map[string]measurement `json:"benchmarks"`
}

func toMeasurement(r testing.BenchmarkResult) measurement {
	return measurement{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
		OpsPerSec:   1e9 / float64(r.NsPerOp()),
	}
}

func main() {
	n := flag.Int("n", 12000, "collection size")
	chunk := flag.Int("chunk", 300, "chunk size")
	k := flag.Int("k", 30, "neighbors per query")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "BENCH_2.json", "output path")
	flag.Parse()

	coll := repro.GenerateCollection(*n, *seed)
	idx, err := repro.Build(coll, repro.BuildConfig{Strategy: repro.StrategySRTree, ChunkSize: *chunk})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: build:", err)
		os.Exit(1)
	}
	defer idx.Close()
	q := coll.Vec(17)
	queries, err := repro.DatasetQueries(coll, 200, *seed+1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: queries:", err)
		os.Exit(1)
	}

	snap := snapshot{
		Schema:      1,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		N:           *n,
		ChunkSize:   *chunk,
		K:           *k,
		Seed:        *seed,
		Benchmarks:  map[string]measurement{},
	}

	snap.Benchmarks["single_query_completion"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Search(q, repro.SearchOptions{K: *k}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Benchmarks["single_query_steady_state"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		var res repro.Result
		if err := idx.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.SearchInto(q, repro.SearchOptions{K: *k}, &res); err != nil {
				b.Fatal(err)
			}
		}
	}))

	snap.Benchmarks["single_query_budget5"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Search(q, repro.SearchOptions{K: *k, MaxChunks: 5}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	workload := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.SearchBatch(queries, repro.BatchOptions{
				SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	m := toMeasurement(workload)
	m.OpsPerSec *= float64(len(queries)) // per query, not per batch
	snap.Benchmarks["batch_budget5_200q"] = m

	// The zero-allocation batch path: the chunk-major engine with a
	// recycled caller-owned result arena. Steady state must be 0 allocs.
	batchInto := testing.Benchmark(func(b *testing.B) {
		opts := repro.BatchOptions{SearchOptions: repro.SearchOptions{K: *k, MaxChunks: 5}}
		results := make([]repro.Result, len(queries))
		if err := idx.SearchBatchInto(queries, opts, results); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.SearchBatchInto(queries, opts, results); err != nil {
				b.Fatal(err)
			}
		}
	})
	m = toMeasurement(batchInto)
	m.OpsPerSec *= float64(len(queries))
	snap.Benchmarks["batch_into_budget5_200q"] = m

	// Whole-image multi-descriptor query: a 50-descriptor bag batched
	// against the store, 3-chunk budget per descriptor.
	bag := make([]repro.Vector, 50)
	for i := range bag {
		bag[i] = coll.Vec(i * 31)
	}
	snap.Benchmarks["multiquery_50desc"] = toMeasurement(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.MultiSearch(bag, repro.MultiSearchOptions{K: 10, MaxChunks: 3}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	for name, m := range snap.Benchmarks {
		fmt.Printf("  %-28s %10d ns/op  %6.0f ops/s  %3d allocs/op\n",
			name, m.NsPerOp, m.OpsPerSec, m.AllocsPerOp)
	}
}
