// Command experiment regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiment -exp all                 # everything (takes a few minutes)
//	experiment -exp table1,fig1,fig2
//	REPRO_N=50000 experiment -exp table2
//
// Output goes to stdout; progress to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig2,fig3,fig4,fig5,table2,fig6,fig7,buildtime,comparators,lessons,ablations,all")
	nFlag := flag.Int("n", 0, "collection size override (also REPRO_N)")
	qFlag := flag.Int("queries", 0, "workload size override (also REPRO_QUERIES)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *nFlag > 0 {
		cfg.N = *nFlag
	}
	if *qFlag > 0 {
		cfg.Queries = *qFlag
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	start := time.Now()
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		log.Fatalf("experiment: %v", err)
	}
	fmt.Fprintf(os.Stderr, "lab ready in %v (n=%d, queries=%d)\n",
		time.Since(start).Round(time.Second), cfg.N, cfg.Queries)

	out := os.Stdout
	section := func(f func() error) {
		if err := f(); err != nil {
			log.Fatalf("experiment: %v", err)
		}
		fmt.Fprintln(out)
	}

	if need("table1") {
		section(func() error { experiments.Table1(lab).Render(out); return nil })
	}
	if need("fig1") {
		section(func() error { experiments.Figure1(lab, 30).Render(out); return nil })
	}
	if need("fig2") {
		section(func() error {
			r, err := experiments.Figure23(lab, "DQ")
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("fig3") {
		section(func() error {
			r, err := experiments.Figure23(lab, "SQ")
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("fig4") {
		section(func() error {
			r, err := experiments.Figure45(lab, "DQ")
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("fig5") {
		section(func() error {
			r, err := experiments.Figure45(lab, "SQ")
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("table2") {
		section(func() error {
			r, err := experiments.Table2(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("fig6") {
		section(func() error {
			r, err := experiments.Figure67(lab, "DQ", nil, nil)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("fig7") {
		section(func() error {
			r, err := experiments.Figure67(lab, "SQ", nil, nil)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("buildtime") {
		section(func() error { experiments.BuildTime(lab).Render(out); return nil })
	}
	if need("lessons") {
		section(func() error {
			r, err := experiments.Lessons(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("comparators") {
		section(func() error {
			r, err := experiments.Comparators(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	if need("ablations") {
		section(func() error {
			r, err := experiments.AblationOverlap(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
		section(func() error {
			r, err := experiments.AblationStrategies(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
		section(func() error {
			r, err := experiments.AblationNaiveBag(lab, 4000)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
		section(func() error {
			r, err := experiments.AblationNormOutlier(lab)
			if err != nil {
				return err
			}
			r.Render(out)
			return nil
		})
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
}
