// Command experiment regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiment -exp all                 # everything (takes a few minutes)
//	experiment -exp table1,fig1,fig2
//	REPRO_N=50000 experiment -exp table2
//
// Output goes to stdout; progress to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// knownExps lists every selectable experiment, in render order.
var knownExps = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "table2", "fig6",
	"fig7", "buildtime", "lessons", "comparators", "skew", "ablations",
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(1)
	}
}

// run is the command behind a testable seam: a non-nil error exits
// non-zero with a one-line diagnostic. Experiment names are validated
// before the (expensive) lab is built, so a typo fails in milliseconds,
// not after minutes of index building.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "comma-separated experiments: "+strings.Join(knownExps, ",")+",all")
	nFlag := fs.Int("n", 0, "collection size override (also REPRO_N)")
	qFlag := fs.Int("queries", 0, "workload size override (also REPRO_QUERIES)")
	quiet := fs.Bool("q", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nFlag < 0 || *qFlag < 0 {
		return fmt.Errorf("-n %d and -queries %d must not be negative", *nFlag, *qFlag)
	}

	valid := map[string]bool{"all": true}
	for _, name := range knownExps {
		valid[name] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		name := strings.TrimSpace(e)
		if name == "" {
			continue
		}
		if !valid[name] {
			return fmt.Errorf("unknown experiment %q (known: %s, all)", name, strings.Join(knownExps, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return fmt.Errorf("no experiments selected: pass -exp with at least one of %s, all", strings.Join(knownExps, ", "))
	}

	cfg := experiments.DefaultConfig()
	if *nFlag > 0 {
		cfg.N = *nFlag
	}
	if *qFlag > 0 {
		cfg.Queries = *qFlag
	}
	if !*quiet {
		cfg.Log = stderr
	}

	all := want["all"]
	need := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	start := time.Now()
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "lab ready in %v (n=%d, queries=%d)\n",
		time.Since(start).Round(time.Second), cfg.N, cfg.Queries)

	out := stdout
	// render accepts any experiment's (result, error) pair directly —
	// f(g()) passthrough — and renders a blank-line-terminated section.
	render := func(r renderer, err error) error {
		if err != nil {
			return err
		}
		r.Render(out)
		fmt.Fprintln(out)
		return nil
	}

	type exp struct {
		name string
		f    func() error
	}
	sections := []exp{
		{"table1", func() error { return render(experiments.Table1(lab), nil) }},
		{"fig1", func() error { return render(experiments.Figure1(lab, 30), nil) }},
		{"fig2", func() error { return render(experiments.Figure23(lab, "DQ")) }},
		{"fig3", func() error { return render(experiments.Figure23(lab, "SQ")) }},
		{"fig4", func() error { return render(experiments.Figure45(lab, "DQ")) }},
		{"fig5", func() error { return render(experiments.Figure45(lab, "SQ")) }},
		{"table2", func() error { return render(experiments.Table2(lab)) }},
		{"fig6", func() error { return render(experiments.Figure67(lab, "DQ", nil, nil)) }},
		{"fig7", func() error { return render(experiments.Figure67(lab, "SQ", nil, nil)) }},
		{"buildtime", func() error { return render(experiments.BuildTime(lab), nil) }},
		{"lessons", func() error { return render(experiments.Lessons(lab)) }},
		{"comparators", func() error { return render(experiments.Comparators(lab)) }},
		{"skew", func() error { return render(experiments.Skew(lab)) }},
		{"ablations", func() error {
			if err := render(experiments.AblationOverlap(lab)); err != nil {
				return err
			}
			if err := render(experiments.AblationStrategies(lab)); err != nil {
				return err
			}
			if err := render(experiments.AblationNaiveBag(lab, 4000)); err != nil {
				return err
			}
			return render(experiments.AblationNormOutlier(lab))
		}},
	}
	for _, s := range sections {
		if !need(s.name) {
			continue
		}
		if err := s.f(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// renderer is the common Render surface of the experiment results.
type renderer interface{ Render(w io.Writer) }
