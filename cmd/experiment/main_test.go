package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunBadFlags pins the CLI's error paths. Every case here fails
// before the lab is built, so the whole table runs in milliseconds.
func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"unknown experiment", []string{"-exp", "fig99"}, `unknown experiment "fig99"`},
		{"typo among valid names", []string{"-exp", "table1,figg2"}, `unknown experiment "figg2"`},
		{"empty selection", []string{"-exp", ","}, "no experiments selected"},
		{"negative n", []string{"-n", "-5"}, "must not be negative"},
		{"negative queries", []string{"-queries", "-1"}, "must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) = nil, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}
